/root/repo/target/release/deps/ablations-3abdd47eba4ee23d.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-3abdd47eba4ee23d: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
