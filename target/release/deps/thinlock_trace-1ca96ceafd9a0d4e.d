/root/repo/target/release/deps/thinlock_trace-1ca96ceafd9a0d4e.d: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs

/root/repo/target/release/deps/libthinlock_trace-1ca96ceafd9a0d4e.rlib: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs

/root/repo/target/release/deps/libthinlock_trace-1ca96ceafd9a0d4e.rmeta: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs

crates/trace/src/lib.rs:
crates/trace/src/characterize.rs:
crates/trace/src/concurrent.rs:
crates/trace/src/generator.rs:
crates/trace/src/io.rs:
crates/trace/src/replay.rs:
crates/trace/src/table1.rs:
