/root/repo/target/release/deps/thinlock_runtime-c56bba3970adef73.d: crates/runtime/src/lib.rs crates/runtime/src/arch.rs crates/runtime/src/backoff.rs crates/runtime/src/error.rs crates/runtime/src/heap.rs crates/runtime/src/lockword.rs crates/runtime/src/prng.rs crates/runtime/src/protocol.rs crates/runtime/src/registry.rs crates/runtime/src/stats.rs

/root/repo/target/release/deps/libthinlock_runtime-c56bba3970adef73.rlib: crates/runtime/src/lib.rs crates/runtime/src/arch.rs crates/runtime/src/backoff.rs crates/runtime/src/error.rs crates/runtime/src/heap.rs crates/runtime/src/lockword.rs crates/runtime/src/prng.rs crates/runtime/src/protocol.rs crates/runtime/src/registry.rs crates/runtime/src/stats.rs

/root/repo/target/release/deps/libthinlock_runtime-c56bba3970adef73.rmeta: crates/runtime/src/lib.rs crates/runtime/src/arch.rs crates/runtime/src/backoff.rs crates/runtime/src/error.rs crates/runtime/src/heap.rs crates/runtime/src/lockword.rs crates/runtime/src/prng.rs crates/runtime/src/protocol.rs crates/runtime/src/registry.rs crates/runtime/src/stats.rs

crates/runtime/src/lib.rs:
crates/runtime/src/arch.rs:
crates/runtime/src/backoff.rs:
crates/runtime/src/error.rs:
crates/runtime/src/heap.rs:
crates/runtime/src/lockword.rs:
crates/runtime/src/prng.rs:
crates/runtime/src/protocol.rs:
crates/runtime/src/registry.rs:
crates/runtime/src/stats.rs:
