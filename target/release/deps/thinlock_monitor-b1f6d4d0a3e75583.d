/root/repo/target/release/deps/thinlock_monitor-b1f6d4d0a3e75583.d: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

/root/repo/target/release/deps/libthinlock_monitor-b1f6d4d0a3e75583.rlib: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

/root/repo/target/release/deps/libthinlock_monitor-b1f6d4d0a3e75583.rmeta: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

crates/monitor/src/lib.rs:
crates/monitor/src/fatlock.rs:
crates/monitor/src/table.rs:
