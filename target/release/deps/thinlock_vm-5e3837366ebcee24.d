/root/repo/target/release/deps/thinlock_vm-5e3837366ebcee24.d: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs

/root/repo/target/release/deps/libthinlock_vm-5e3837366ebcee24.rlib: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs

/root/repo/target/release/deps/libthinlock_vm-5e3837366ebcee24.rmeta: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs

crates/vm/src/lib.rs:
crates/vm/src/asm.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/error.rs:
crates/vm/src/interp.rs:
crates/vm/src/library.rs:
crates/vm/src/program.rs:
crates/vm/src/programs.rs:
crates/vm/src/transform.rs:
crates/vm/src/value.rs:
crates/vm/src/verify.rs:
