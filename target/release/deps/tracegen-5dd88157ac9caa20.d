/root/repo/target/release/deps/tracegen-5dd88157ac9caa20.d: crates/bench/src/bin/tracegen.rs

/root/repo/target/release/deps/tracegen-5dd88157ac9caa20: crates/bench/src/bin/tracegen.rs

crates/bench/src/bin/tracegen.rs:
