/root/repo/target/release/deps/reproduce-62b697750681c8e7.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-62b697750681c8e7: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
