/root/repo/target/release/deps/thinlock_baselines-97ecd02b9468cab3.d: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

/root/repo/target/release/deps/libthinlock_baselines-97ecd02b9468cab3.rlib: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

/root/repo/target/release/deps/libthinlock_baselines-97ecd02b9468cab3.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cache.rs:
crates/baselines/src/hot.rs:
