/root/repo/target/release/deps/table1_characterize-891434850db0b2b7.d: crates/bench/benches/table1_characterize.rs

/root/repo/target/release/deps/table1_characterize-891434850db0b2b7: crates/bench/benches/table1_characterize.rs

crates/bench/benches/table1_characterize.rs:
