/root/repo/target/release/deps/thinlock_bench-90798956516ce557.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libthinlock_bench-90798956516ce557.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libthinlock_bench-90798956516ce557.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
