/root/repo/target/release/deps/thinlock-fc0da74c9efe0b2d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

/root/repo/target/release/deps/libthinlock-fc0da74c9efe0b2d.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

/root/repo/target/release/deps/libthinlock-fc0da74c9efe0b2d.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/tasuki.rs:
crates/core/src/thin.rs:
