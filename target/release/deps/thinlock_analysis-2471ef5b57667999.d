/root/repo/target/release/deps/thinlock_analysis-2471ef5b57667999.d: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

/root/repo/target/release/deps/libthinlock_analysis-2471ef5b57667999.rlib: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

/root/repo/target/release/deps/libthinlock_analysis-2471ef5b57667999.rmeta: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

crates/analysis/src/lib.rs:
crates/analysis/src/escape.rs:
crates/analysis/src/lockorder.rs:
crates/analysis/src/lockstack.rs:
crates/analysis/src/nestdepth.rs:
crates/analysis/src/report.rs:
