/root/repo/target/release/deps/lockcheck-a7bd3717c51b5f9a.d: crates/analysis/src/bin/lockcheck.rs

/root/repo/target/release/deps/lockcheck-a7bd3717c51b5f9a: crates/analysis/src/bin/lockcheck.rs

crates/analysis/src/bin/lockcheck.rs:
